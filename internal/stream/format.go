package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary edge-stream file format ("css1"): what cmd/meshgen -stream
// emits and Reader replays. Everything is uvarint-encoded after a
// fixed 3-byte preamble, and every count is bounds-checked against the
// caps below before any slab memory grows — the decoder must survive
// arbitrary bytes (FuzzStreamDecode).
//
//	header:  magic 'c' 's' | version 1 | uvarint nvert | uvarint nadj
//	slab:    uvarint nv | uvarint nslabadj | nv uvarint degrees |
//	         nslabadj uvarint neighbor ids (absolute, strictly
//	         increasing per vertex, self-loop free)
//
// nadj counts directed adjacency entries (2x the undirected edge
// count) and must be even; slabs cover vertices in global order with
// no gaps, and the file ends exactly when every vertex and adjacency
// entry is accounted for.
const (
	streamMagic0  = 'c'
	streamMagic1  = 's'
	streamVersion = 1

	// DefaultSlabVerts is the slab granularity used when a caller
	// passes 0: small enough that the resident fringe stays a rounding
	// error next to the part vector, large enough to amortize per-slab
	// overhead.
	DefaultSlabVerts = 4096
	// MaxSlabVerts caps the vertices one slab may cover; the decoder
	// rejects slabs beyond it rather than growing the fringe.
	MaxSlabVerts = 1 << 20
	// MaxSlabAdj caps the adjacency entries one slab may carry —
	// together with MaxSlabVerts this bounds the resident fringe
	// (~16 MiB of ids) regardless of graph size.
	MaxSlabAdj = 1 << 24

	// maxHeaderVerts/maxHeaderAdj bound the header counts so decoder
	// arithmetic cannot overflow on hostile input. They are far above
	// anything real (16 G vertices, 256 G adjacency entries).
	maxHeaderVerts = 1 << 34
	maxHeaderAdj   = 1 << 38
)

// Writer encodes a graph as an edge-stream file. Slabs must arrive in
// global vertex order with no gaps; Close verifies the declared totals
// were met, so a file that Close accepted always decodes.
type Writer struct {
	bw      *bufio.Writer
	nvert   int
	nadj    int
	cursor  int // next vertex id expected
	wrote   int // adjacency entries written
	closed  bool
	scratch [binary.MaxVarintLen64]byte
}

// NewWriter starts an edge-stream file for nvert vertices and nadj
// directed adjacency entries (2x the undirected edge count) and writes
// the header.
func NewWriter(w io.Writer, nvert, nadj int) (*Writer, error) {
	if nvert < 0 || nvert > maxHeaderVerts {
		return nil, fmt.Errorf("stream: nvert %d out of range [0,%d]", nvert, maxHeaderVerts)
	}
	if nadj < 0 || nadj > maxHeaderAdj || nadj%2 != 0 {
		return nil, fmt.Errorf("stream: nadj %d invalid (want even, in [0,%d])", nadj, maxHeaderAdj)
	}
	wr := &Writer{bw: bufio.NewWriter(w), nvert: nvert, nadj: nadj}
	wr.bw.WriteByte(streamMagic0)
	wr.bw.WriteByte(streamMagic1)
	wr.bw.WriteByte(streamVersion)
	wr.uvarint(uint64(nvert))
	wr.uvarint(uint64(nadj))
	if err := wr.bw.Flush(); err != nil {
		return nil, err
	}
	return wr, nil
}

func (wr *Writer) uvarint(x uint64) {
	n := binary.PutUvarint(wr.scratch[:], x)
	wr.bw.Write(wr.scratch[:n])
}

// WriteSlab appends one slab. It enforces the format invariants
// (contiguous coverage, slab caps, per-vertex strictly increasing
// in-range self-loop-free neighbors) so an encoder bug surfaces here,
// not in a reader three tools away.
func (wr *Writer) WriteSlab(s *Slab) error {
	if wr.closed {
		return fmt.Errorf("stream: write after Close")
	}
	nv := s.NVerts()
	if nv <= 0 || nv > MaxSlabVerts {
		return fmt.Errorf("stream: slab covers %d vertices, want 1..%d", nv, MaxSlabVerts)
	}
	if s.Lo != wr.cursor {
		return fmt.Errorf("stream: slab starts at vertex %d, want %d", s.Lo, wr.cursor)
	}
	if s.Lo+nv > wr.nvert {
		return fmt.Errorf("stream: slab ends at vertex %d, beyond nvert %d", s.Lo+nv, wr.nvert)
	}
	nadj := len(s.Adj)
	if nadj > MaxSlabAdj {
		return fmt.Errorf("stream: slab carries %d adjacency entries, cap %d", nadj, MaxSlabAdj)
	}
	if s.XAdj[0] != 0 || s.XAdj[nv] != nadj {
		return fmt.Errorf("stream: slab xadj spans [%d,%d], want [0,%d]", s.XAdj[0], s.XAdj[nv], nadj)
	}
	if wr.wrote+nadj > wr.nadj {
		return fmt.Errorf("stream: adjacency overflow: %d entries after %d, declared %d", nadj, wr.wrote, wr.nadj)
	}
	wr.uvarint(uint64(nv))
	wr.uvarint(uint64(nadj))
	for i := 0; i < nv; i++ {
		lo, hi := s.XAdj[i], s.XAdj[i+1]
		if hi < lo {
			return fmt.Errorf("stream: slab xadj not monotone at vertex %d", s.Lo+i)
		}
		wr.uvarint(uint64(hi - lo))
	}
	for i := 0; i < nv; i++ {
		v := s.Lo + i
		prev := -1
		for _, u := range s.Adj[s.XAdj[i]:s.XAdj[i+1]] {
			if u < 0 || u >= wr.nvert {
				return fmt.Errorf("stream: vertex %d has neighbor %d outside [0,%d)", v, u, wr.nvert)
			}
			if u == v {
				return fmt.Errorf("stream: vertex %d has a self-loop", v)
			}
			if u == prev {
				return fmt.Errorf("stream: vertex %d lists neighbor %d twice", v, u)
			}
			if u < prev {
				return fmt.Errorf("stream: vertex %d neighbors not increasing (%d after %d)", v, u, prev)
			}
			prev = u
			wr.uvarint(uint64(u))
		}
	}
	wr.cursor += nv
	wr.wrote += nadj
	return wr.bw.Flush()
}

// Close verifies the file covered everything the header declared and
// flushes. It does not close the underlying writer.
func (wr *Writer) Close() error {
	if wr.closed {
		return nil
	}
	wr.closed = true
	if wr.cursor != wr.nvert {
		return fmt.Errorf("stream: closed after vertex %d of %d", wr.cursor, wr.nvert)
	}
	if wr.wrote != wr.nadj {
		return fmt.Errorf("stream: closed with %d adjacency entries, declared %d", wr.wrote, wr.nadj)
	}
	return wr.bw.Flush()
}

// Copy drains gs into w as an edge-stream file and returns the number
// of slabs written. One slab stays resident.
func Copy(w io.Writer, gs GraphStream) (int, error) {
	if err := gs.Reset(); err != nil {
		return 0, err
	}
	wr, err := NewWriter(w, gs.NumVertices(), 2*gs.NumEdges())
	if err != nil {
		return 0, err
	}
	var s Slab
	slabs := 0
	for {
		err := gs.Next(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			return slabs, err
		}
		if err := wr.WriteSlab(&s); err != nil {
			return slabs, err
		}
		slabs++
	}
	return slabs, wr.Close()
}

// Reader replays an edge-stream file as a GraphStream. It is
// defensive: every count is checked against the header and the format
// caps before slab memory grows, malformed adjacency (out of range,
// self-loop, duplicate, unsorted) is a descriptive error, and
// truncation surfaces as a wrapped io.ErrUnexpectedEOF — never a
// panic, never an unbounded allocation.
type Reader struct {
	r      io.ReadSeeker
	br     *bufio.Reader
	nvert  int
	nadj   int
	cursor int // next vertex id expected
	read   int // adjacency entries consumed
	done   bool
	failed error
}

// NewReader parses the header and positions the stream at the first
// slab. Reset replays from the start via Seek.
func NewReader(r io.ReadSeeker) (*Reader, error) {
	rd := &Reader{r: r, br: bufio.NewReader(r)}
	if err := rd.readHeader(); err != nil {
		return nil, err
	}
	return rd, nil
}

func (rd *Reader) readHeader() error {
	// Byte-at-a-time so Reset's header re-read stays allocation-free
	// (a local array handed to io.ReadFull escapes).
	var hdr [3]byte
	for i := range hdr {
		b, err := rd.br.ReadByte()
		if err != nil {
			return fmt.Errorf("stream: short header: %w", noEOF(err))
		}
		hdr[i] = b
	}
	if hdr[0] != streamMagic0 || hdr[1] != streamMagic1 {
		return fmt.Errorf("stream: bad magic %#x %#x", hdr[0], hdr[1])
	}
	if hdr[2] != streamVersion {
		return fmt.Errorf("stream: unsupported version %d", hdr[2])
	}
	nvert, err := rd.uvarint("nvert")
	if err != nil {
		return err
	}
	nadj, err := rd.uvarint("nadj")
	if err != nil {
		return err
	}
	if nvert > maxHeaderVerts {
		return fmt.Errorf("stream: header nvert %d beyond cap %d", nvert, maxHeaderVerts)
	}
	if nadj > maxHeaderAdj || nadj%2 != 0 {
		return fmt.Errorf("stream: header nadj %d invalid (want even, <= %d)", nadj, maxHeaderAdj)
	}
	rd.nvert, rd.nadj = int(nvert), int(nadj)
	rd.cursor, rd.read, rd.done = 0, 0, false
	return nil
}

// noEOF turns a bare io.EOF into io.ErrUnexpectedEOF: inside a
// structure, running out of bytes is truncation, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// uvarint reads one bounded varint, naming the field in errors.
func (rd *Reader) uvarint(field string) (uint64, error) {
	x, err := binary.ReadUvarint(rd.br)
	if err != nil {
		return 0, fmt.Errorf("stream: reading %s: %w", field, noEOF(err))
	}
	return x, nil
}

// NumVertices returns the header vertex count.
func (rd *Reader) NumVertices() int { return rd.nvert }

// NumEdges returns the header undirected edge count (nadj/2).
func (rd *Reader) NumEdges() int { return rd.nadj / 2 }

// Reset seeks back to the start of the file and re-parses the header,
// verifying it has not changed underneath us.
func (rd *Reader) Reset() error {
	if _, err := rd.r.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("stream: reset: %w", err)
	}
	rd.br.Reset(rd.r)
	nvert, nadj := rd.nvert, rd.nadj
	if err := rd.readHeader(); err != nil {
		return err
	}
	if rd.nvert != nvert || rd.nadj != nadj {
		return fmt.Errorf("stream: header changed across Reset (%d/%d -> %d/%d)", nvert, nadj, rd.nvert, rd.nadj)
	}
	rd.failed = nil
	return nil
}

// fail records a decode error so later Next calls repeat it instead of
// reading past a corrupt structure.
func (rd *Reader) fail(err error) error {
	rd.failed = err
	return err
}

// The decode-error constructors live outside Next so the hot decode
// loop stays free of fmt calls (hotalloc); they only run on corrupt
// input, where allocation is irrelevant.

func errAdjCount(read, nadj int) error {
	return fmt.Errorf("stream: file carries %d adjacency entries, header declared %d", read, nadj)
}

func errAfterFinal(err error) error {
	if err != nil {
		return fmt.Errorf("stream: after final slab: %w", err)
	}
	return fmt.Errorf("stream: trailing bytes after final slab")
}

func errSlabVerts(nv uint64) error {
	return fmt.Errorf("stream: slab covers %d vertices, want 1..%d", nv, MaxSlabVerts)
}

func errSlabEnd(end, nvert int) error {
	return fmt.Errorf("stream: slab ends at vertex %d, beyond header nvert %d", end, nvert)
}

func errSlabAdj(na uint64) error {
	return fmt.Errorf("stream: slab carries %d adjacency entries, cap %d", na, MaxSlabAdj)
}

func errAdjOverflow(nadj, read, total int) error {
	return fmt.Errorf("stream: adjacency overflow: %d entries after %d, header declared %d", nadj, read, total)
}

func errDegreeOverrun(v int, d uint64, nadj int) error {
	return fmt.Errorf("stream: vertex %d degree %d overruns slab adjacency %d", v, d, nadj)
}

func errDegreeSum(total, nadj int) error {
	return fmt.Errorf("stream: slab degrees sum to %d, declared %d", total, nadj)
}

func errNeighborRange(v int, u uint64, nvert int) error {
	return fmt.Errorf("stream: vertex %d has neighbor %d outside [0,%d)", v, u, nvert)
}

func errSelfLoop(v int) error {
	return fmt.Errorf("stream: vertex %d has a self-loop", v)
}

func errDupNeighbor(v, u int) error {
	return fmt.Errorf("stream: vertex %d lists neighbor %d twice", v, u)
}

func errUnsorted(v, u, prev int) error {
	return fmt.Errorf("stream: vertex %d neighbors not increasing (%d after %d)", v, u, prev)
}

// Next decodes the next slab into s.
//
//chaos:hotpath
func (rd *Reader) Next(s *Slab) error {
	if rd.failed != nil {
		return rd.failed
	}
	if rd.cursor >= rd.nvert {
		s.reset(rd.nvert)
		if !rd.done {
			rd.done = true
			if rd.read != rd.nadj {
				return rd.fail(errAdjCount(rd.read, rd.nadj))
			}
			if _, err := rd.br.ReadByte(); err != io.EOF {
				return rd.fail(errAfterFinal(err))
			}
		}
		return io.EOF
	}

	nv64, err := rd.uvarint("slab nv")
	if err != nil {
		return rd.fail(err)
	}
	if nv64 == 0 || nv64 > MaxSlabVerts {
		return rd.fail(errSlabVerts(nv64))
	}
	nv := int(nv64)
	if rd.cursor+nv > rd.nvert {
		return rd.fail(errSlabEnd(rd.cursor+nv, rd.nvert))
	}
	na64, err := rd.uvarint("slab nadj")
	if err != nil {
		return rd.fail(err)
	}
	if na64 > MaxSlabAdj {
		return rd.fail(errSlabAdj(na64))
	}
	nadj := int(na64)
	if rd.read+nadj > rd.nadj {
		return rd.fail(errAdjOverflow(nadj, rd.read, rd.nadj))
	}

	s.reset(rd.cursor)
	total := 0
	for i := 0; i < nv; i++ {
		d64, err := rd.uvarint("degree")
		if err != nil {
			return rd.fail(err)
		}
		if d64 > uint64(nadj-total) {
			return rd.fail(errDegreeOverrun(rd.cursor+i, d64, nadj))
		}
		total += int(d64)
		s.XAdj = append(s.XAdj, total)
	}
	if total != nadj {
		return rd.fail(errDegreeSum(total, nadj))
	}
	for i := 0; i < nv; i++ {
		v := rd.cursor + i
		prev := -1
		for j := s.XAdj[i]; j < s.XAdj[i+1]; j++ {
			u64, err := rd.uvarint("neighbor")
			if err != nil {
				return rd.fail(err)
			}
			if u64 >= uint64(rd.nvert) {
				return rd.fail(errNeighborRange(v, u64, rd.nvert))
			}
			u := int(u64)
			if u == v {
				return rd.fail(errSelfLoop(v))
			}
			if u == prev {
				return rd.fail(errDupNeighbor(v, u))
			}
			if u < prev {
				return rd.fail(errUnsorted(v, u, prev))
			}
			prev = u
			s.Adj = append(s.Adj, u)
		}
	}
	rd.cursor += nv
	rd.read += nadj
	return nil
}
