package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"chaos/internal/mesh"
)

// encodeMesh streams the side^3 lattice through Copy and returns the
// file bytes plus the materialized CSR for cross-checks.
func encodeMesh(t *testing.T, side int, seed uint64, slabVerts int) ([]byte, []int, []int) {
	t.Helper()
	ls := mesh.NewLatticeSource(side, side, side, seed)
	var buf bytes.Buffer
	slabs, err := Copy(&buf, FromSource(ls, slabVerts))
	if err != nil {
		t.Fatal(err)
	}
	wantSlabs := (ls.NumVertices() + slabVerts - 1) / slabVerts
	if slabs != wantSlabs {
		t.Fatalf("Copy wrote %d slabs, want %d", slabs, wantSlabs)
	}
	xadj, adj := meshCSR(side, seed)
	return buf.Bytes(), xadj, adj
}

func TestFileRoundTrip(t *testing.T) {
	raw, xadj, adj := encodeMesh(t, 8, 21, 37)
	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumVertices() != len(xadj)-1 || rd.NumEdges() != len(adj)/2 {
		t.Fatalf("header %d/%d, want %d/%d", rd.NumVertices(), rd.NumEdges(), len(xadj)-1, len(adj)/2)
	}
	// Two full replays (Reset in between) must reproduce the CSR.
	for pass := 0; pass < 2; pass++ {
		if err := rd.Reset(); err != nil {
			t.Fatal(err)
		}
		var s Slab
		cursor, at := 0, 0
		for {
			err := rd.Next(&s)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < s.NVerts(); i++ {
				v := s.Lo + i
				got := s.Adj[s.XAdj[i]:s.XAdj[i+1]]
				want := adj[xadj[v]:xadj[v+1]]
				if len(got) != len(want) {
					t.Fatalf("pass %d vertex %d: degree %d, want %d", pass, v, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("pass %d vertex %d neighbor %d: %d, want %d", pass, v, j, got[j], want[j])
					}
				}
				at += len(got)
			}
			cursor += s.NVerts()
		}
		if cursor != len(xadj)-1 || at != len(adj) {
			t.Fatalf("pass %d: replayed %d/%d, want %d/%d", pass, cursor, at, len(xadj)-1, len(adj))
		}
		// Next after EOF keeps returning EOF.
		if err := rd.Next(&s); err != io.EOF {
			t.Fatalf("pass %d: post-EOF Next = %v", pass, err)
		}
	}
}

func TestPartitionFromFileMatchesMem(t *testing.T) {
	raw, xadj, adj := encodeMesh(t, 9, 4, 100)
	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Objective: Fennel, Seed: 8, Restreams: 1}
	fromFile, err := Partition(rd, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	fromMem, err := Partition(NewMemStream(xadj, adj, 512), 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range fromMem {
		if fromFile[v] != fromMem[v] {
			t.Fatalf("file and mem partitions diverge at vertex %d", v)
		}
	}
}

func TestWriterRejectsMalformedSlabs(t *testing.T) {
	newW := func() *Writer {
		wr, err := NewWriter(io.Discard, 10, 4)
		if err != nil {
			t.Fatal(err)
		}
		return wr
	}
	slab := func(lo int, xadj, adj []int) *Slab { return &Slab{Lo: lo, XAdj: xadj, Adj: adj} }
	cases := []struct {
		name string
		s    *Slab
	}{
		{"gap", slab(1, []int{0, 1}, []int{2})},
		{"beyond nvert", slab(0, []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, nil)},
		{"self-loop", slab(0, []int{0, 1}, []int{0})},
		{"out of range", slab(0, []int{0, 1}, []int{10})},
		{"negative", slab(0, []int{0, 1}, []int{-1})},
		{"duplicate", slab(0, []int{0, 2}, []int{3, 3})},
		{"unsorted", slab(0, []int{0, 2}, []int{4, 2})},
		{"empty", slab(0, []int{0}, nil)},
	}
	for _, c := range cases {
		if err := newW().WriteSlab(c.s); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}

	wr := newW()
	if err := wr.Close(); err == nil {
		t.Error("Close with vertices uncovered: accepted")
	}
	wr = newW()
	if err := wr.WriteSlab(slab(0, []int{0, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2}, []int{1, 0})); err != nil {
		t.Fatal(err)
	}
	if err := wr.Close(); err == nil {
		t.Error("Close with adjacency undeclared short: accepted")
	}
	if err := wr.WriteSlab(slab(10, []int{0, 0}, nil)); err == nil {
		t.Error("write after Close: accepted")
	}

	if _, err := NewWriter(io.Discard, -1, 0); err == nil {
		t.Error("negative nvert accepted")
	}
	if _, err := NewWriter(io.Discard, 4, 3); err == nil {
		t.Error("odd nadj accepted")
	}
}

// corrupt applies f to a copy of raw and expects the reader to return
// a descriptive error containing want (never a panic).
func expectDecodeError(t *testing.T, raw []byte, want string) {
	t.Helper()
	rd, err := NewReader(bytes.NewReader(raw))
	if err == nil {
		var s Slab
		for {
			if err = rd.Next(&s); err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Fatalf("decoded cleanly, want error containing %q", want)
		}
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q, want it to contain %q", err, want)
	}
}

func TestReaderRejectsCorruptFiles(t *testing.T) {
	raw, _, _ := encodeMesh(t, 4, 2, 16)

	t.Run("short header", func(t *testing.T) {
		expectDecodeError(t, raw[:2], "short header")
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] = 'x'
		expectDecodeError(t, bad, "bad magic")
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[2] = 9
		expectDecodeError(t, bad, "version")
	})
	t.Run("truncated slab", func(t *testing.T) {
		expectDecodeError(t, raw[:len(raw)/2], "stream:")
	})
	t.Run("truncation is ErrUnexpectedEOF", func(t *testing.T) {
		rd, err := NewReader(bytes.NewReader(raw[:len(raw)-1]))
		if err != nil {
			t.Fatal(err)
		}
		var s Slab
		for err == nil {
			err = rd.Next(&s)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation error = %v, want ErrUnexpectedEOF", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		expectDecodeError(t, append(append([]byte(nil), raw...), 0), "trailing")
	})

	// Hand-built hostile slabs: header says 4 vertices, 4 adjacency
	// entries (2 edges on a path 0-1, 1-2 ... we just need counts).
	hdr := []byte{'c', 's', 1, 4, 4}
	t.Run("over-count slab nv", func(t *testing.T) {
		expectDecodeError(t, append(append([]byte(nil), hdr...), 5), "beyond header nvert")
	})
	t.Run("zero-vertex slab", func(t *testing.T) {
		expectDecodeError(t, append(append([]byte(nil), hdr...), 0), "want 1..")
	})
	t.Run("adjacency overflow", func(t *testing.T) {
		expectDecodeError(t, append(append([]byte(nil), hdr...), 1, 200, 1), "overflow")
	})
	t.Run("degree overrun", func(t *testing.T) {
		// nv=2, nadj=2, degrees 3,...: first degree overruns slab total.
		expectDecodeError(t, append(append([]byte(nil), hdr...), 2, 2, 3), "overruns")
	})
	t.Run("degree undercount", func(t *testing.T) {
		// nv=2, nadj=2, degrees 1,0: sum 1 != declared 2.
		expectDecodeError(t, append(append([]byte(nil), hdr...), 2, 2, 1, 0), "sum to")
	})
	t.Run("duplicate neighbor", func(t *testing.T) {
		// nv=1, nadj=2, degree 2, neighbors 1,1.
		expectDecodeError(t, append(append([]byte(nil), hdr...), 1, 2, 2, 1, 1), "twice")
	})
	t.Run("self-loop", func(t *testing.T) {
		expectDecodeError(t, append(append([]byte(nil), hdr...), 1, 2, 2, 0, 1), "self-loop")
	})
	t.Run("unsorted", func(t *testing.T) {
		expectDecodeError(t, append(append([]byte(nil), hdr...), 1, 2, 2, 3, 1), "not increasing")
	})
	t.Run("neighbor out of range", func(t *testing.T) {
		expectDecodeError(t, append(append([]byte(nil), hdr...), 1, 2, 2, 1, 9), "outside")
	})
	t.Run("odd header nadj", func(t *testing.T) {
		expectDecodeError(t, []byte{'c', 's', 1, 4, 3}, "invalid")
	})
	t.Run("adjacency shortfall at end", func(t *testing.T) {
		// Four 0-degree slabs then EOF: file total 0, header declared 4.
		expectDecodeError(t, append(append([]byte(nil), hdr...), 4, 0, 0, 0, 0, 0), "header declared")
	})
	t.Run("error is sticky", func(t *testing.T) {
		rd, err := NewReader(bytes.NewReader(append(append([]byte(nil), hdr...), 5)))
		if err != nil {
			t.Fatal(err)
		}
		var s Slab
		first := rd.Next(&s)
		if first == nil {
			t.Fatal("hostile slab accepted")
		}
		if second := rd.Next(&s); second != first {
			t.Fatalf("error not sticky: %v then %v", first, second)
		}
		// Reset clears it and replays (still corrupt, same error text).
		if err := rd.Reset(); err != nil {
			t.Fatal(err)
		}
		if again := rd.Next(&s); again == nil || again.Error() != first.Error() {
			t.Fatalf("after Reset: %v, want %v", again, first)
		}
	})
}
