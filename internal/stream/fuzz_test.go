package stream

import (
	"bytes"
	"io"
	"testing"

	"chaos/internal/mesh"
)

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzStreamDecode feeds arbitrary bytes to the edge-stream decoder.
// The decoder must never panic and never allocate beyond the slab
// caps; when it does accept a file, the decoded slabs must satisfy the
// format invariants (contiguous coverage, sorted self-loop-free
// in-range adjacency, header totals met), and re-encoding them must
// reproduce the accepted bytes exactly (the format is canonical).
func FuzzStreamDecode(f *testing.F) {
	// Seed corpus: valid files at two slab granularities, a truncated
	// file, an over-count slab, and a duplicate-edge slab.
	ls := mesh.NewLatticeSource(5, 4, 3, 9)
	for _, slabVerts := range []int{8, 64} {
		var buf bytes.Buffer
		if _, err := Copy(&buf, FromSource(ls, slabVerts)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte{'c', 's', 1, 4, 4, 5})             // slab nv beyond header
	f.Add([]byte{'c', 's', 1, 4, 4, 1, 2, 2, 1, 1}) // duplicate edge
	f.Add([]byte{'c', 's', 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var s Slab
		cursor, total := 0, 0
		for {
			err := rd.Next(&s)
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			if s.Lo != cursor {
				t.Fatalf("accepted slab at %d, want %d", s.Lo, cursor)
			}
			nv := s.NVerts()
			if nv < 1 || nv > MaxSlabVerts || len(s.Adj) > MaxSlabAdj {
				t.Fatalf("accepted slab outside caps: %d vertices, %d adj", nv, len(s.Adj))
			}
			for i := 0; i < nv; i++ {
				v, prev := s.Lo+i, -1
				for _, u := range s.Adj[s.XAdj[i]:s.XAdj[i+1]] {
					if u < 0 || u >= rd.NumVertices() || u == v || u <= prev {
						t.Fatalf("accepted bad neighbor %d of vertex %d", u, v)
					}
					prev = u
				}
			}
			cursor += nv
			total += len(s.Adj)
		}
		if cursor != rd.NumVertices() || total != 2*rd.NumEdges() {
			t.Fatalf("accepted %d/%d, header %d/%d", cursor, total, rd.NumVertices(), 2*rd.NumEdges())
		}

		// Round-trip: an accepted file must re-encode through a Writer
		// (which enforces the same invariants) and decode back to
		// identical slabs. Byte identity is NOT required — uvarints
		// admit over-long encodings the Writer normalizes.
		if err := rd.Reset(); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		wr, err := NewWriter(&out, rd.NumVertices(), 2*rd.NumEdges())
		if err != nil {
			t.Fatal(err)
		}
		for {
			err := rd.Next(&s)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("replay of accepted file failed: %v", err)
			}
			if err := wr.WriteSlab(&s); err != nil {
				t.Fatalf("re-encode of accepted slab failed: %v", err)
			}
		}
		if err := wr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := rd.Reset(); err != nil {
			t.Fatal(err)
		}
		rd2, err := NewReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded file rejected: %v", err)
		}
		var a, b Slab
		for {
			errA, errB := rd.Next(&a), rd2.Next(&b)
			if (errA == io.EOF) != (errB == io.EOF) {
				t.Fatalf("re-encoded stream length diverges: %v vs %v", errA, errB)
			}
			if errA == io.EOF {
				break
			}
			if errA != nil || errB != nil {
				t.Fatalf("replay diverges: %v vs %v", errA, errB)
			}
			if a.Lo != b.Lo || len(a.Adj) != len(b.Adj) || !sameInts(a.XAdj, b.XAdj) || !sameInts(a.Adj, b.Adj) {
				t.Fatalf("re-encoded slab at %d differs", a.Lo)
			}
		}
	})
}
