package stream

import (
	"fmt"
	"io"
	"math"

	"chaos/internal/xrand"
)

// Objective selects the greedy placement rule of the streaming pass.
type Objective int

const (
	// LDG is linear deterministic greedy (Stanton & Kliot): a vertex
	// goes to the part holding most of its already-placed neighbors,
	// discounted multiplicatively by that part's fill fraction —
	// score(q) = conn(q) * (1 - load(q)/capacity).
	LDG Objective = iota
	// Fennel is the degree-penalized objective (Tsourakakis et al.): a
	// vertex goes to the part maximizing neighbors minus the marginal
	// occupancy cost — score(q) = conn(q) - alpha*gamma*load(q)^(gamma-1)
	// with gamma = 1.5 and alpha = m*sqrt(k)/n^1.5. Trades a little
	// balance slack for better cuts on skewed-degree graphs.
	Fennel
)

// fennelGamma is the Fennel occupancy exponent; 1.5 is the paper's
// recommended setting and keeps the penalty derivative a cheap sqrt.
const fennelGamma = 1.5

// String returns the spec-level name of the objective.
func (o Objective) String() string {
	if o == Fennel {
		return "FENNEL"
	}
	return "LDG"
}

// Options tunes a streaming partition pass. The zero value is the
// default configuration: LDG, 5% balance slack, a single pass, seed 0,
// DefaultSlabVerts fringe granularity.
type Options struct {
	// Objective selects LDG (default) or Fennel.
	Objective Objective
	// Slack is the part-capacity slack fraction: no part may exceed
	// (1+Slack) x the ideal load (0 = default 0.05; must stay below
	// 0.5).
	Slack float64
	// Restreams is the number of additional buffered restreaming
	// passes: each replays the stream and re-places every vertex with
	// full knowledge of its neighbors' current assignments, recovering
	// cut quality a single blind pass loses. 0 = one pass only.
	Restreams int
	// Seed salts the deterministic tie-breaking rotation; the same
	// (stream, Options) pair always yields the same partition.
	Seed uint64
	// SlabVerts bounds the resident fringe in vertices per slab for
	// the convenience entry points that build their own stream
	// (0 = DefaultSlabVerts).
	SlabVerts int
}

// slack resolves the Slack default.
func (o Options) slack() float64 {
	if o.Slack == 0 {
		return 0.05
	}
	return o.Slack
}

// Placer is the bounded-memory core of the streaming pass: the
// per-part load table plus scoring scratch, placing one vertex at a
// time against a caller-owned part vector (part[u] < 0 = unassigned).
// Its resident state is O(nparts) — independent of the graph — which
// is what lets the same core serve both the out-of-core file path and
// internal/partition's SPMD adapter.
type Placer struct {
	nparts  int
	obj     Objective
	seed    uint64
	cap     float64
	alpha   float64
	loads   []float64
	conn    []float64 // edge multiplicity toward each part (scoring scratch)
	touched []int     // parts with nonzero conn, for O(deg) reset
}

// NewPlacer sizes a placer for a graph of nverts vertices and nedges
// undirected edges with total vertex weight totalW (= nverts when
// unweighted), to be split into nparts parts under opt.
func NewPlacer(nverts, nedges, nparts int, totalW float64, opt Options) *Placer {
	if nparts < 1 {
		panic(fmt.Sprintf("stream: nparts = %d", nparts))
	}
	pl := &Placer{
		nparts:  nparts,
		obj:     opt.Objective,
		seed:    opt.Seed,
		loads:   make([]float64, nparts),
		conn:    make([]float64, nparts),
		touched: make([]int, 0, nparts),
	}
	pl.cap = totalW / float64(nparts) * (1 + opt.slack())
	if pl.cap <= 0 {
		pl.cap = 1
	}
	if nverts > 0 {
		nf := float64(nverts)
		pl.alpha = float64(nedges) * math.Sqrt(float64(nparts)) / (nf * math.Sqrt(nf))
	}
	return pl
}

// Load returns the current load of part q.
func (pl *Placer) Load(q int) float64 { return pl.loads[q] }

// Add records weight w arriving in part q.
func (pl *Placer) Add(q int, w float64) { pl.loads[q] += w }

// Remove records weight w leaving part q (restreaming removes a vertex
// before re-placing it).
func (pl *Placer) Remove(q int, w float64) { pl.loads[q] -= w }

// Place scores every part for vertex v given its neighbor ids and the
// current assignment vector, and returns the chosen part. It does not
// record the choice — the caller assigns part[v] and calls Add, which
// keeps the weighted and unweighted drivers symmetric. Deterministic:
// ties break toward the lighter part, then toward the first part in a
// seed-and-vertex-keyed rotation of the scan order (which is what
// spreads the early, signal-free placements).
func (pl *Placer) Place(v int, adj []int, part []int) int {
	return pl.place(v, adj, nil, part)
}

// PlaceWeighted is Place with per-edge weights ew aligned with adj —
// the coarse-graph variant (contracted edges carry multiplicity).
func (pl *Placer) PlaceWeighted(v int, adj []int, ew []float64, part []int) int {
	return pl.place(v, adj, ew, part)
}

// place is the scoring core shared by the unweighted (ew == nil) and
// weighted paths. This is the per-edge hot loop of the streaming
// family; it allocates nothing at steady state.
//
//chaos:hotpath
func (pl *Placer) place(v int, adj []int, ew []float64, part []int) int {
	conn := pl.conn
	touched := pl.touched[:0]
	for i, u := range adj {
		q := part[u]
		if q < 0 {
			continue
		}
		if conn[q] == 0 {
			touched = append(touched, q)
		}
		if ew != nil {
			conn[q] += ew[i]
		} else {
			conn[q]++
		}
	}

	k := pl.nparts
	r0 := int(xrand.Hash64(uint64(v)^pl.seed) % uint64(k))
	best, bestScore := -1, math.Inf(-1)
	for i := 0; i < k; i++ {
		q := r0 + i
		if q >= k {
			q -= k
		}
		load := pl.loads[q]
		if load >= pl.cap {
			continue // hard capacity: the balance contract
		}
		var score float64
		if pl.obj == Fennel {
			score = conn[q] - pl.alpha*fennelGamma*math.Sqrt(load)
		} else {
			score = conn[q] * (1 - load/pl.cap)
		}
		if score > bestScore || (score == bestScore && best >= 0 && load < pl.loads[best]) {
			best, bestScore = q, score
		}
	}
	if best < 0 {
		// Every part is at capacity — possible only on weighted
		// streams where one arrival overshoots the slack. Least loaded
		// wins, rotation breaking exact ties.
		for i := 0; i < k; i++ {
			q := r0 + i
			if q >= k {
				q -= k
			}
			if best < 0 || pl.loads[q] < pl.loads[best] {
				best = q
			}
		}
	}

	for _, q := range touched {
		conn[q] = 0
	}
	pl.touched = touched
	return best
}

// Partition streams gs into nparts parts. On graphs large enough to
// profit (n >= bootstrapMin, nparts >= 2) it first runs the buffered
// bootstrap — streaming clustering, an in-memory solve of the bounded
// coarse model, projection — and then polishes with 1+opt.Restreams
// re-placement passes; otherwise a single blind greedy pass in arrival
// order plus opt.Restreams restreams. The returned vector assigns
// every vertex; resident memory beyond it is one slab, the O(nparts)
// placer, and the vertex-proportional (never edge-proportional)
// bootstrap model. Deterministic for a fixed (stream, nparts, opt).
func Partition(gs GraphStream, nparts int, opt Options) ([]int, error) {
	return PartitionWeighted(gs, nparts, nil, opt)
}

// PartitionWeighted is Partition with per-vertex weights (nil = unit).
// The weight vector is O(n) caller-resident state, in line with the
// semi-streaming model; the edge set still never materializes.
func PartitionWeighted(gs GraphStream, nparts int, w []float64, opt Options) ([]int, error) {
	if nparts < 1 {
		return nil, fmt.Errorf("stream: nparts = %d, want >= 1", nparts)
	}
	n := gs.NumVertices()
	if w != nil && len(w) < n {
		return nil, fmt.Errorf("stream: weight vector covers %d of %d vertices", len(w), n)
	}
	totalW := float64(n)
	if w != nil {
		totalW = 0
		for v := 0; v < n; v++ {
			totalW += w[v]
		}
	}
	pl := NewPlacer(n, gs.NumEdges(), nparts, totalW, opt)

	part := make([]int, n)
	seeded := false
	if n >= bootstrapMin && nparts >= 2 {
		bp, err := bootstrap(gs, nparts, w, totalW, opt)
		if err != nil {
			return nil, err
		}
		copy(part, bp)
		for v := 0; v < n; v++ {
			pl.Add(part[v], vertexW(w, v))
		}
		seeded = true
	} else {
		for i := range part {
			part[i] = -1
		}
	}

	var slab Slab
	passes := 1 + opt.Restreams
	for pass := 0; pass < passes; pass++ {
		if err := runPass(gs, &slab, pl, part, w, seeded || pass > 0); err != nil {
			return nil, err
		}
	}
	return part, nil
}

// vertexW resolves a vertex weight against an optional weight vector.
func vertexW(w []float64, v int) float64 {
	if w == nil {
		return 1
	}
	return w[v]
}

// runPass replays gs once, placing (or, when restream is set,
// removing and re-placing) every vertex in arrival order. The slab and
// placer are caller-owned so repeated passes reuse their buffers.
func runPass(gs GraphStream, s *Slab, pl *Placer, part []int, w []float64, restream bool) error {
	if err := gs.Reset(); err != nil {
		return err
	}
	expect := 0
	for {
		err := gs.Next(s)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if s.Lo != expect {
			return fmt.Errorf("stream: slab starts at vertex %d, want %d", s.Lo, expect)
		}
		for i := 0; i < s.NVerts(); i++ {
			v := s.Lo + i
			wt := vertexW(w, v)
			if restream {
				pl.Remove(part[v], wt)
				part[v] = -1
			}
			q := pl.Place(v, s.Adj[s.XAdj[i]:s.XAdj[i+1]], part)
			part[v] = q
			pl.Add(q, wt)
		}
		expect = s.Lo + s.NVerts()
	}
	if expect != len(part) {
		return fmt.Errorf("stream: stream ended at vertex %d of %d", expect, len(part))
	}
	return nil
}
