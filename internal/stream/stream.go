package stream

import (
	"fmt"
	"io"
)

// Slab is one bounded chunk of a graph stream: the CSR adjacency of
// vertices [Lo, Lo+NVerts()) in global vertex order. Neighbors of the
// i-th slab vertex are Adj[XAdj[i]:XAdj[i+1]], as global vertex ids,
// strictly increasing, self-loop free. A Slab owns its backing arrays;
// stream implementations fill them in place (grow-only) so a pass over
// an arbitrarily large stream reuses one slab's memory.
type Slab struct {
	// Lo is the global id of the slab's first vertex.
	Lo int
	// XAdj is the slab-local CSR index: len NVerts()+1, XAdj[0] == 0.
	XAdj []int
	// Adj holds the neighbor ids of all slab vertices.
	Adj []int
}

// NVerts returns the number of vertices the slab covers.
func (s *Slab) NVerts() int {
	if len(s.XAdj) == 0 {
		return 0
	}
	return len(s.XAdj) - 1
}

// reset prepares the slab for refilling at global vertex lo, keeping
// the backing arrays.
func (s *Slab) reset(lo int) {
	s.Lo = lo
	s.XAdj = append(s.XAdj[:0], 0)
	s.Adj = s.Adj[:0]
}

// GraphStream is a replayable, bounded-memory source of graph
// structure: CSR slabs in global vertex order, each covering the
// vertices immediately after the previous one. NumVertices and
// NumEdges are known up front (the stream header carries them);
// Next fills the caller's slab in place and reports io.EOF after the
// final slab; Reset rewinds to the first slab so the pass engine can
// restream. Implementations keep only O(slab) state resident — that
// bounded fringe is the point of the interface.
type GraphStream interface {
	// NumVertices returns the global vertex count.
	NumVertices() int
	// NumEdges returns the global undirected edge count.
	NumEdges() int
	// Next fills s with the next slab, reusing s's backing arrays.
	// It returns io.EOF (and leaves s empty) when the stream is
	// exhausted.
	Next(s *Slab) error
	// Reset rewinds the stream to its first slab.
	Reset() error
}

// Source is the minimal generator interface a workload implements to
// be streamed without materializing its edge list: per-vertex
// adjacency on demand, in any order the caller asks. FromSource wraps
// one into a GraphStream. internal/mesh.LatticeSource is the canonical
// implementation (cmd/meshgen -stream).
type Source interface {
	// NumVertices returns the global vertex count.
	NumVertices() int
	// NumEdges returns the global undirected edge count.
	NumEdges() int
	// AppendNeighbors appends the neighbor ids of vertex v to buf and
	// returns it: strictly increasing, self-loop free.
	AppendNeighbors(v int, buf []int) []int
}

// sourceStream adapts a Source to a GraphStream with a fixed slab
// granularity.
type sourceStream struct {
	src       Source
	slabVerts int
	cursor    int
}

// FromSource wraps a per-vertex Source into a GraphStream yielding
// slabs of slabVerts vertices (0 = DefaultSlabVerts). The stream is
// trivially replayable and holds no graph state of its own.
func FromSource(src Source, slabVerts int) GraphStream {
	if slabVerts <= 0 {
		slabVerts = DefaultSlabVerts
	}
	if slabVerts > MaxSlabVerts {
		slabVerts = MaxSlabVerts
	}
	return &sourceStream{src: src, slabVerts: slabVerts}
}

func (ss *sourceStream) NumVertices() int { return ss.src.NumVertices() }
func (ss *sourceStream) NumEdges() int    { return ss.src.NumEdges() }
func (ss *sourceStream) Reset() error     { ss.cursor = 0; return nil }

// Next fills s with the next slabVerts vertices' adjacency. The slab
// additionally respects MaxSlabAdj: a run of high-degree vertices
// closes the slab early rather than growing the fringe past the cap.
//
//chaos:hotpath
func (ss *sourceStream) Next(s *Slab) error {
	n := ss.src.NumVertices()
	if ss.cursor >= n {
		s.reset(n)
		return io.EOF
	}
	s.reset(ss.cursor)
	for ss.cursor < n && s.NVerts() < ss.slabVerts {
		s.Adj = ss.src.AppendNeighbors(ss.cursor, s.Adj)
		s.XAdj = append(s.XAdj, len(s.Adj))
		ss.cursor++
		if len(s.Adj) >= MaxSlabAdj {
			break
		}
	}
	return nil
}

// MemStream is the in-memory GraphStream adapter: a resident CSR
// (xadj/adj as geocol builds them) replayed in slabs. It exists for
// tests, benchmarks, and for feeding resident graphs through the same
// pass engine the out-of-core path uses; it does not itself save
// memory.
type MemStream struct {
	xadj, adj []int
	nedges    int
	slabVerts int
	cursor    int
}

// NewMemStream wraps a CSR into a replayable stream of slabVerts-vertex
// slabs (0 = DefaultSlabVerts). The CSR must be symmetric, sorted and
// self-loop free (geocol's invariant); it is referenced, not copied.
func NewMemStream(xadj, adj []int, slabVerts int) *MemStream {
	if len(xadj) == 0 {
		xadj = []int{0}
	}
	if slabVerts <= 0 {
		slabVerts = DefaultSlabVerts
	}
	return &MemStream{xadj: xadj, adj: adj, nedges: len(adj) / 2, slabVerts: slabVerts}
}

func (ms *MemStream) NumVertices() int { return len(ms.xadj) - 1 }
func (ms *MemStream) NumEdges() int    { return ms.nedges }
func (ms *MemStream) Reset() error     { ms.cursor = 0; return nil }

// Next fills s with the next slab of the resident CSR.
//
//chaos:hotpath
func (ms *MemStream) Next(s *Slab) error {
	n := ms.NumVertices()
	if ms.cursor >= n {
		s.reset(n)
		return io.EOF
	}
	s.reset(ms.cursor)
	for ms.cursor < n && s.NVerts() < ms.slabVerts {
		v := ms.cursor
		s.Adj = append(s.Adj, ms.adj[ms.xadj[v]:ms.xadj[v+1]]...)
		s.XAdj = append(s.XAdj, len(s.Adj))
		ms.cursor++
	}
	return nil
}

// Cut streams once over gs and returns the undirected edge cut of
// part: the number of edges whose endpoints landed in different parts.
// Unassigned endpoints (part < 0) do not count. One slab resident.
func Cut(gs GraphStream, part []int) (int, error) {
	if err := gs.Reset(); err != nil {
		return 0, err
	}
	if len(part) < gs.NumVertices() {
		return 0, fmt.Errorf("stream: partition has %d entries, want %d", len(part), gs.NumVertices())
	}
	var s Slab
	cut := 0
	for {
		if err := gs.Next(&s); err != nil {
			if err == io.EOF {
				return cut / 2, nil
			}
			return 0, err
		}
		for i := 0; i < s.NVerts(); i++ {
			p := part[s.Lo+i]
			for _, u := range s.Adj[s.XAdj[i]:s.XAdj[i+1]] {
				if q := part[u]; q >= 0 && p >= 0 && q != p {
					cut++
				}
			}
		}
	}
}
