package stream

import (
	"math"
	"testing"

	"chaos/internal/mesh"
)

// cutCSR is a straight-line reference cut counter (internal/partition
// has the same logic, but importing it from an in-package test would
// cycle once partition's STREAM adapter lands).
func cutCSR(xadj, adj, part []int) int {
	cut := 0
	for v := 0; v < len(xadj)-1; v++ {
		for _, u := range adj[xadj[v]:xadj[v+1]] {
			if part[v] != part[u] {
				cut++
			}
		}
	}
	return cut / 2
}

// meshCSR materializes the lattice mesh side^3 as a sorted CSR.
func meshCSR(side int, seed uint64) (xadj, adj []int) {
	ls := mesh.NewLatticeSource(side, side, side, seed)
	n := ls.NumVertices()
	xadj = make([]int, 1, n+1)
	for v := 0; v < n; v++ {
		adj = ls.AppendNeighbors(v, adj)
		xadj = append(xadj, len(adj))
	}
	return xadj, adj
}

func TestMemStreamRoundTrip(t *testing.T) {
	xadj, adj := meshCSR(6, 3)
	for _, slabVerts := range []int{1, 7, 64, 1 << 20} {
		ms := NewMemStream(xadj, adj, slabVerts)
		if ms.NumVertices() != len(xadj)-1 || ms.NumEdges() != len(adj)/2 {
			t.Fatalf("slabVerts=%d: counts %d/%d, want %d/%d",
				slabVerts, ms.NumVertices(), ms.NumEdges(), len(xadj)-1, len(adj)/2)
		}
		// Two replays must both reproduce the CSR exactly.
		for pass := 0; pass < 2; pass++ {
			if err := ms.Reset(); err != nil {
				t.Fatal(err)
			}
			var s Slab
			var gotX, gotA []int
			gotX = append(gotX, 0)
			cursor := 0
			for {
				err := ms.Next(&s)
				if err != nil {
					break
				}
				if s.Lo != cursor {
					t.Fatalf("slab at %d, want %d", s.Lo, cursor)
				}
				if slabVerts < len(xadj)-1 && s.NVerts() > slabVerts {
					t.Fatalf("slab covers %d vertices, cap %d", s.NVerts(), slabVerts)
				}
				for i := 0; i < s.NVerts(); i++ {
					gotA = append(gotA, s.Adj[s.XAdj[i]:s.XAdj[i+1]]...)
					gotX = append(gotX, len(gotA))
				}
				cursor += s.NVerts()
			}
			if len(gotX) != len(xadj) || len(gotA) != len(adj) {
				t.Fatalf("pass %d slabVerts=%d: reassembled %d/%d, want %d/%d",
					pass, slabVerts, len(gotX), len(gotA), len(xadj), len(adj))
			}
			for i := range xadj {
				if gotX[i] != xadj[i] {
					t.Fatalf("xadj[%d] = %d, want %d", i, gotX[i], xadj[i])
				}
			}
			for i := range adj {
				if gotA[i] != adj[i] {
					t.Fatalf("adj[%d] = %d, want %d", i, gotA[i], adj[i])
				}
			}
		}
	}
}

func TestFromSourceMatchesMemStream(t *testing.T) {
	const side = 7
	ls := mesh.NewLatticeSource(side, side, side, 11)
	xadj, adj := meshCSR(side, 11)
	src := FromSource(ls, 19)
	ms := NewMemStream(xadj, adj, 19)
	var a, b Slab
	for {
		errA, errB := src.Next(&a), ms.Next(&b)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("streams diverge: %v vs %v", errA, errB)
		}
		if errA != nil {
			break
		}
		if a.Lo != b.Lo || a.NVerts() != b.NVerts() || len(a.Adj) != len(b.Adj) {
			t.Fatalf("slab shape diverges at %d/%d", a.Lo, b.Lo)
		}
		for i := range a.Adj {
			if a.Adj[i] != b.Adj[i] {
				t.Fatalf("adj diverges at slab %d entry %d", a.Lo, i)
			}
		}
	}
}

// partCounts tallies assignments, failing on any unassigned vertex.
func partCounts(t *testing.T, part []int, nparts int) []int {
	t.Helper()
	counts := make([]int, nparts)
	for v, q := range part {
		if q < 0 || q >= nparts {
			t.Fatalf("vertex %d assigned %d, want [0,%d)", v, q, nparts)
		}
		counts[q]++
	}
	return counts
}

func TestPartitionBalanceAndDeterminism(t *testing.T) {
	xadj, adj := meshCSR(12, 5) // 1728 vertices
	n := len(xadj) - 1
	for _, obj := range []Objective{LDG, Fennel} {
		for _, nparts := range []int{2, 7, 16} {
			opt := Options{Objective: obj, Seed: 99, Restreams: 1}
			ms := NewMemStream(xadj, adj, 128)
			part, err := Partition(ms, nparts, opt)
			if err != nil {
				t.Fatal(err)
			}
			counts := partCounts(t, part, nparts)
			capacity := int(math.Ceil(float64(n) / float64(nparts) * 1.05))
			for q, c := range counts {
				if c > capacity {
					t.Errorf("%v k=%d: part %d holds %d > cap %d", obj, nparts, q, c, capacity)
				}
			}
			// Same inputs, same partition — including across slab sizes:
			// placement order is global vertex order regardless of fringe
			// granularity.
			again, err := Partition(NewMemStream(xadj, adj, 1000), nparts, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range part {
				if part[v] != again[v] {
					t.Fatalf("%v k=%d: nondeterministic at vertex %d", obj, nparts, v)
				}
			}
			// A different seed must actually change something.
			opt.Seed = 100
			other, err := Partition(ms, nparts, opt)
			if err != nil {
				t.Fatal(err)
			}
			same := 0
			for v := range part {
				if part[v] == other[v] {
					same++
				}
			}
			if same == n {
				t.Errorf("%v k=%d: seed has no effect", obj, nparts)
			}
		}
	}
}

func TestRestreamImprovesCut(t *testing.T) {
	xadj, adj := meshCSR(14, 17) // 2744 vertices
	ms := NewMemStream(xadj, adj, 256)
	const nparts = 8
	blind, err := Partition(ms, nparts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Partition(ms, nparts, Options{Seed: 1, Restreams: 2})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Cut(ms, blind)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Cut(ms, refined)
	if err != nil {
		t.Fatal(err)
	}
	if cr >= cb {
		t.Errorf("restreaming did not improve cut: %d -> %d", cb, cr)
	}
	if got := cutCSR(xadj, adj, refined); got != cr {
		t.Errorf("stream.Cut = %d, reference cut = %d", cr, got)
	}
}

func TestCutPartial(t *testing.T) {
	xadj := []int{0, 2, 4, 6}
	adj := []int{1, 2, 0, 2, 0, 1} // triangle
	ms := NewMemStream(xadj, adj, 2)
	for _, c := range []struct {
		part []int
		want int
	}{
		{[]int{0, 0, 0}, 0},
		{[]int{0, 0, 1}, 2},
		{[]int{0, 1, 2}, 3},
		{[]int{0, 1, -1}, 1}, // unassigned endpoint doesn't count
	} {
		got, err := Cut(ms, c.part)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Cut(%v) = %d, want %d", c.part, got, c.want)
		}
	}
	if _, err := Cut(ms, []int{0}); err == nil {
		t.Error("short partition vector not rejected")
	}
}

func TestPartitionBadArgs(t *testing.T) {
	xadj, adj := meshCSR(3, 1)
	ms := NewMemStream(xadj, adj, 8)
	if _, err := Partition(ms, 0, Options{}); err == nil {
		t.Error("nparts=0 not rejected")
	}
}

// truncatedStream ends before covering every vertex.
type truncatedStream struct{ *MemStream }

func (ts truncatedStream) NumVertices() int { return ts.MemStream.NumVertices() + 5 }

func TestPartitionTruncatedStream(t *testing.T) {
	xadj, adj := meshCSR(3, 1)
	if _, err := Partition(truncatedStream{NewMemStream(xadj, adj, 8)}, 2, Options{}); err == nil {
		t.Error("truncated stream not rejected")
	}
}
