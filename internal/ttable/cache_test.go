package ttable

import (
	"testing"

	"chaos/internal/dist"
	"chaos/internal/machine"
)

func TestCachedResolveCorrectAndCheaper(t *testing.T) {
	const n, p = 200, 4
	owner := irregularOwner(n, p)
	ref := dist.NewIrregular(owner, p)
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	run := func(cached bool) float64 {
		maxT, err := machine.MaxClock(machine.IPSC860(p), func(c *machine.Ctx) {
			tab := Build(c, n, myGlobals(owner, c.Rank()))
			if cached {
				tab.EnableCache()
			}
			start := c.Clock()
			_ = start
			for round := 0; round < 5; round++ {
				owners, locals := tab.Resolve(c, qs)
				for g := 0; g < n; g++ {
					if owners[g] != ref.Owner(g) || locals[g] != ref.Local(g) {
						t.Errorf("cached=%v round %d: wrong answer for %d", cached, round, g)
					}
				}
			}
			if cached {
				if tab.CacheSize() != n {
					t.Errorf("cache holds %d entries, want %d", tab.CacheSize(), n)
				}
			} else if tab.CacheSize() != 0 {
				t.Error("cache populated without EnableCache")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return maxT
	}
	plain := run(false)
	cached := run(true)
	if cached >= plain {
		t.Errorf("cached resolve (%.6fs) not cheaper than plain (%.6fs)", cached, plain)
	}
}

func TestCacheColdStartMatchesPlain(t *testing.T) {
	const n, p = 50, 3
	owner := irregularOwner(n, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		tab := Build(c, n, myGlobals(owner, c.Rank()))
		tab.EnableCache()
		// First (cold) resolve must already be correct.
		qs := []int{3, 3, 17, 42}
		owners, _ := tab.Resolve(c, qs)
		for i, g := range qs {
			if owners[i] != owner[g] {
				t.Errorf("cold cached resolve wrong for %d", g)
			}
		}
		// Partial warm resolve: mix of hits and misses.
		qs2 := []int{3, 8, 17, 9}
		owners2, _ := tab.Resolve(c, qs2)
		for i, g := range qs2 {
			if owners2[i] != owner[g] {
				t.Errorf("warm cached resolve wrong for %d", g)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnableCacheIdempotent(t *testing.T) {
	const n, p = 20, 2
	owner := irregularOwner(n, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		tab := Build(c, n, myGlobals(owner, c.Rank()))
		tab.EnableCache()
		tab.Resolve(c, []int{1, 2})
		size := tab.CacheSize()
		tab.EnableCache() // must not clear
		if tab.CacheSize() != size {
			t.Error("EnableCache cleared existing entries")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
