// Package ttable implements the CHAOS/PARTI distributed translation
// table. Irregularly distributed arrays have no closed-form owner
// function, so the runtime stores, for every global index g, the pair
// (owner rank, local index) on g's "home" processor — the owner of g
// under a default BLOCK distribution of the index space. Dereference
// answers batched global→(owner,local) queries with one round trip of
// all-to-all communication, which is exactly the index-translation step
// of the paper's Phase D inspector.
package ttable

import (
	"fmt"
	"sort"

	"chaos/internal/dist"
	"chaos/internal/machine"
)

// Resolver answers batched ownership queries for a distributed index
// space. Regular distributions resolve locally; irregular ones go
// through the distributed translation table.
type Resolver interface {
	// Resolve returns, for each queried global index, the owning
	// rank and the local index there. Must be called by all ranks
	// collectively if the implementation communicates.
	Resolve(c *machine.Ctx, globals []int) (owners, locals []int)
	// Size returns the extent of the index space.
	Size() int
	// Kind returns the distribution type for DAD bookkeeping.
	Kind() dist.Kind
}

// Regular adapts a closed-form distribution to the Resolver interface;
// Resolve performs no communication.
type Regular struct {
	D dist.Dist
}

func (r Regular) Resolve(c *machine.Ctx, globals []int) ([]int, []int) {
	owners := make([]int, len(globals))
	locals := make([]int, len(globals))
	for i, g := range globals {
		owners[i] = r.D.Owner(g)
		locals[i] = r.D.Local(g)
	}
	c.Words(2 * len(globals))
	return owners, locals
}

func (r Regular) Size() int              { return r.D.Size() }
func (r Regular) LocalSize(rank int) int { return r.D.LocalSize(rank) }
func (r Regular) Kind() dist.Kind        { return r.D.Kind() }

// Table is one rank's slice of the distributed translation table.
type Table struct {
	home  dist.BlockDist
	owner []int // indexed by home-local index
	local []int
	mine  []int // global indices owned by this rank, local order

	// cache, when non-nil, memoizes dereference results on the
	// querying rank (CHAOS's software caching of translation-table
	// lookups): repeated dereferences of the same globals — the
	// common case when several loops share indirection arrays — skip
	// the network round trip.
	cache map[int][2]int
}

// EnableCache turns on per-rank memoization of Resolve results. The
// table is immutable once built, so cached entries never go stale; a
// redistributed array gets a *new* table, which starts cold.
func (t *Table) EnableCache() {
	if t.cache == nil {
		t.cache = make(map[int][2]int)
	}
}

// CacheSize returns the number of memoized dereference entries.
func (t *Table) CacheSize() int { return len(t.cache) }

// Build constructs the translation table for an irregular distribution
// of an index space of size n. myGlobals lists the global indices owned
// by the calling rank; the position of g in myGlobals is its local
// index. Build must be called collectively. It panics if the union of
// all ranks' myGlobals is not exactly [0, n) (each index owned once).
func Build(c *machine.Ctx, n int, myGlobals []int) *Table {
	p := c.Procs()
	home := dist.NewBlock(n, p)
	t := &Table{home: home}
	t.mine = append([]int(nil), myGlobals...)

	// Route (g, localIndex) to home(g). Payload layout: pairs.
	out := make([][]int, p)
	for l, g := range myGlobals {
		if g < 0 || g >= n {
			panic(fmt.Sprintf("ttable: global index %d out of range [0,%d)", g, n))
		}
		h := home.Owner(g)
		out[h] = append(out[h], g, l)
	}
	c.Words(2 * len(myGlobals))
	in := c.AlltoAllInts(out)

	sz := home.LocalSize(c.Rank())
	t.owner = make([]int, sz)
	t.local = make([]int, sz)
	filled := make([]bool, sz)
	lo := home.Lo(c.Rank())
	for src := 0; src < p; src++ {
		pairs := in[src]
		for i := 0; i+1 < len(pairs); i += 2 {
			g, l := pairs[i], pairs[i+1]
			hl := g - lo
			if filled[hl] {
				panic(fmt.Sprintf("ttable: global index %d claimed by multiple ranks", g))
			}
			filled[hl] = true
			t.owner[hl] = src
			t.local[hl] = l
		}
	}
	for hl, f := range filled {
		if !f {
			panic(fmt.Sprintf("ttable: global index %d owned by no rank", lo+hl))
		}
	}
	c.Words(2 * sz)
	return t
}

// Resolve answers global→(owner, local) for each query index, in one
// all-to-all round trip. Duplicate queries are permitted. Must be
// called collectively (even when every query hits the local cache, the
// underlying exchange runs so ranks stay matched).
func (t *Table) Resolve(c *machine.Ctx, globals []int) ([]int, []int) {
	p := c.Procs()
	n := t.home.Size()

	owners := make([]int, len(globals))
	locals := make([]int, len(globals))

	// Group query positions by home rank, preserving a stable order;
	// cache hits are answered immediately and skipped.
	type ref struct{ pos, g int }
	byHome := make([][]ref, p)
	for pos, g := range globals {
		if g < 0 || g >= n {
			panic(fmt.Sprintf("ttable: query index %d out of range [0,%d)", g, n))
		}
		if t.cache != nil {
			if e, ok := t.cache[g]; ok {
				owners[pos], locals[pos] = e[0], e[1]
				continue
			}
		}
		h := t.home.Owner(g)
		byHome[h] = append(byHome[h], ref{pos, g})
	}
	out := make([][]int, p)
	for h, refs := range byHome {
		if len(refs) == 0 {
			continue
		}
		qs := make([]int, len(refs))
		for i, r := range refs {
			qs[i] = r.g
		}
		out[h] = qs
	}
	c.Words(2 * len(globals))
	queries := c.AlltoAllInts(out)

	// Answer queries against the local table slice.
	lo := t.home.Lo(c.Rank())
	ans := make([][]int, p)
	for src := 0; src < p; src++ {
		qs := queries[src]
		if len(qs) == 0 {
			continue
		}
		a := make([]int, 2*len(qs))
		for i, g := range qs {
			hl := g - lo
			a[2*i] = t.owner[hl]
			a[2*i+1] = t.local[hl]
		}
		ans[src] = a
	}
	c.Words(2 * len(globals))
	replies := c.AlltoAllInts(ans)

	for h, refs := range byHome {
		rep := replies[h]
		for i, r := range refs {
			owners[r.pos] = rep[2*i]
			locals[r.pos] = rep[2*i+1]
			if t.cache != nil {
				t.cache[r.g] = [2]int{rep[2*i], rep[2*i+1]}
			}
		}
	}
	return owners, locals
}

// Size returns the extent of the translated index space.
func (t *Table) Size() int { return t.home.Size() }

// Kind returns dist.Irregular.
func (t *Table) Kind() dist.Kind { return dist.Irregular }

// MyCount returns the number of elements owned by the calling rank.
func (t *Table) MyCount() int { return len(t.mine) }

// MyGlobals returns the calling rank's owned global indices in local
// order (do not mutate).
func (t *Table) MyGlobals() []int { return t.mine }

// CountsAllGather returns every rank's element count; collective.
func (t *Table) CountsAllGather(c *machine.Ctx) []int {
	return c.AllGatherInt(len(t.mine))
}

// Replicated gathers the complete ownership map onto every rank and
// returns it as an IrregularDist; collective. Intended for tests,
// ablations (replicated vs distributed translation), and small runs.
func (t *Table) Replicated(c *machine.Ctx) *dist.IrregularDist {
	lo := t.home.Lo(c.Rank())
	// Encode (g, owner) pairs for the home-resident entries.
	pairs := make([]int, 0, 2*len(t.owner))
	for hl, o := range t.owner {
		pairs = append(pairs, lo+hl, o)
	}
	all := c.AllGatherInts(pairs)
	owner := make([]int, t.home.Size())
	for i := 0; i+1 < len(all); i += 2 {
		owner[all[i]] = all[i+1]
	}
	c.Words(len(owner))
	return dist.NewIrregular(owner, c.Procs())
}

// SortedCopy returns a sorted copy of xs (test helper shared by
// packages; exported to avoid duplication).
func SortedCopy(xs []int) []int {
	cp := append([]int(nil), xs...)
	sort.Ints(cp)
	return cp
}
