package ttable

import (
	"math/rand"
	"strings"
	"testing"

	"chaos/internal/dist"
	"chaos/internal/machine"
)

// irregularFixture deals global indices to ranks round-robin with a
// twist so that ownership differs from BLOCK.
func irregularOwner(n, p int) []int {
	owner := make([]int, n)
	rng := rand.New(rand.NewSource(42))
	for g := range owner {
		owner[g] = rng.Intn(p)
	}
	return owner
}

func myGlobals(owner []int, rank int) []int {
	var out []int
	for g, o := range owner {
		if o == rank {
			out = append(out, g)
		}
	}
	return out
}

func TestBuildAndResolve(t *testing.T) {
	const n, p = 100, 4
	owner := irregularOwner(n, p)
	ref := dist.NewIrregular(owner, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		tab := Build(c, n, myGlobals(owner, c.Rank()))
		// Every rank queries every global index.
		qs := make([]int, n)
		for i := range qs {
			qs[i] = i
		}
		owners, locals := tab.Resolve(c, qs)
		for g := 0; g < n; g++ {
			if owners[g] != ref.Owner(g) {
				t.Errorf("rank %d: owner(%d) = %d, want %d", c.Rank(), g, owners[g], ref.Owner(g))
			}
			if locals[g] != ref.Local(g) {
				t.Errorf("rank %d: local(%d) = %d, want %d", c.Rank(), g, locals[g], ref.Local(g))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResolveDuplicatesAndSubsets(t *testing.T) {
	const n, p = 50, 3
	owner := irregularOwner(n, p)
	ref := dist.NewIrregular(owner, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		tab := Build(c, n, myGlobals(owner, c.Rank()))
		qs := []int{7, 7, 3, 49, 0, 7, 3}
		owners, locals := tab.Resolve(c, qs)
		for i, g := range qs {
			if owners[i] != ref.Owner(g) || locals[i] != ref.Local(g) {
				t.Errorf("query %d (g=%d): got (%d,%d) want (%d,%d)",
					i, g, owners[i], locals[i], ref.Owner(g), ref.Local(g))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResolveEmptyQuery(t *testing.T) {
	const n, p = 20, 4
	owner := irregularOwner(n, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		tab := Build(c, n, myGlobals(owner, c.Rank()))
		owners, locals := tab.Resolve(c, nil)
		if len(owners) != 0 || len(locals) != 0 {
			t.Error("empty query returned results")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildDetectsMissingIndex(t *testing.T) {
	const n, p = 10, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		// Nobody claims index 9.
		var mine []int
		for g := c.Rank(); g < n-1; g += p {
			mine = append(mine, g)
		}
		Build(c, n, mine)
	})
	if err == nil || !strings.Contains(err.Error(), "owned by no rank") {
		t.Fatalf("err = %v, want missing-index panic", err)
	}
}

func TestBuildDetectsDuplicateOwnership(t *testing.T) {
	const n, p = 10, 2
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		// Both ranks claim index 0.
		mine := []int{0}
		for g := c.Rank() + 1; g < n; g += p {
			mine = append(mine, g)
		}
		_ = mine
		Build(c, n, mine)
	})
	if err == nil || !strings.Contains(err.Error(), "multiple ranks") {
		t.Fatalf("err = %v, want duplicate-ownership panic", err)
	}
}

func TestCountsAllGather(t *testing.T) {
	const n, p = 40, 4
	owner := irregularOwner(n, p)
	ref := dist.NewIrregular(owner, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		tab := Build(c, n, myGlobals(owner, c.Rank()))
		counts := tab.CountsAllGather(c)
		for r := 0; r < p; r++ {
			if counts[r] != ref.LocalSize(r) {
				t.Errorf("counts[%d] = %d, want %d", r, counts[r], ref.LocalSize(r))
			}
		}
		if tab.MyCount() != ref.LocalSize(c.Rank()) {
			t.Errorf("MyCount = %d", tab.MyCount())
		}
		if tab.Size() != n || tab.Kind() != dist.Irregular {
			t.Error("Size/Kind wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplicated(t *testing.T) {
	const n, p = 30, 3
	owner := irregularOwner(n, p)
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		tab := Build(c, n, myGlobals(owner, c.Rank()))
		rep := tab.Replicated(c)
		for g := 0; g < n; g++ {
			if rep.Owner(g) != owner[g] {
				t.Errorf("replicated owner(%d) = %d, want %d", g, rep.Owner(g), owner[g])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegularResolver(t *testing.T) {
	const n, p = 25, 4
	err := machine.Run(machine.Zero(p), func(c *machine.Ctx) {
		d := dist.NewBlock(n, p)
		r := Regular{D: d}
		if r.Size() != n || r.Kind() != dist.Block || r.LocalSize(0) != d.LocalSize(0) {
			t.Error("Regular metadata wrong")
		}
		qs := []int{0, 24, 13, 13}
		owners, locals := r.Resolve(c, qs)
		for i, g := range qs {
			if owners[i] != d.Owner(g) || locals[i] != d.Local(g) {
				t.Errorf("Regular resolve mismatch at %d", i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResolveChargesClock(t *testing.T) {
	const n, p = 64, 4
	owner := irregularOwner(n, p)
	maxT, err := machine.MaxClock(machine.IPSC860(p), func(c *machine.Ctx) {
		tab := Build(c, n, myGlobals(owner, c.Rank()))
		qs := make([]int, n)
		for i := range qs {
			qs[i] = i
		}
		tab.Resolve(c, qs)
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxT <= 0 {
		t.Fatal("translation table build+resolve charged no virtual time")
	}
}
