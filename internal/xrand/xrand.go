// Package xrand provides a small deterministic pseudo-random stream
// (SplitMix64) used by workload generators and partitioners. Every
// consumer seeds its own stream, so results are reproducible and
// independent of call order elsewhere in the program — which is what
// lets the paper's Section 6 tables regenerate bit-identically on any
// host.
package xrand

// Stream is a SplitMix64 generator. The zero value is a valid stream
// seeded with 0.
type Stream struct {
	state uint64
}

// New returns a stream with the given seed.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher-Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Hash64 mixes a single value through SplitMix64's finalizer; useful
// for stateless per-element jitter.
func Hash64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
