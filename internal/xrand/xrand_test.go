package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		if v := s.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		nn := int(n)%64 + 1
		p := New(seed).Perm(nn)
		seen := make([]bool, nn)
		for _, v := range p {
			if v < 0 || v >= nn || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Spreads(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		h := Hash64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}
